#!/usr/bin/env python3
"""clang-tidy gate with a committed findings baseline.

Runs clang-tidy (config: the checked-in .clang-tidy) over every src/ TU in a
build directory's compile_commands.json, normalizes the findings into stable
fingerprints, and compares them against scripts/clang_tidy_baseline.txt:

  * a finding present in the baseline is tolerated (known debt, tracked);
  * a finding NOT in the baseline fails the gate (exit 1) — new code must
    not add new findings;
  * a baseline entry that no longer fires is reported as retired (run with
    --update-baseline to shrink the file).

Fingerprints are `relative/path.cpp | check-name | message` — deliberately
no line numbers, so unrelated edits shifting a file do not invalidate the
baseline. Multiple identical findings collapse to one fingerprint.

When clang-tidy is not installed (this repo's primary container ships GCC
only), the gate prints a SKIP notice and exits 0: the configuration and
baseline are still exercised on any host that has the tool.

Usage:
  scripts/clang_tidy_gate.py [--build-dir build] [--baseline scripts/clang_tidy_baseline.txt]
                             [--update-baseline] [--jobs N]
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# clang-tidy diagnostic line:  /path/file.cpp:12:34: warning: text [check]
DIAG_RE = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<sev>warning|error): (?P<msg>.*?) \[(?P<check>[^\]]+)\]$")


def find_clang_tidy():
    candidates = ["clang-tidy"] + [
        f"clang-tidy-{v}" for v in range(21, 13, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_db(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        sys.exit(f"error: {db_path} not found — configure CMake first "
                 "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
    with open(db_path, encoding="utf-8") as fh:
        return json.load(fh)


def src_files(db):
    """Library TUs under src/ (tests/bench/examples are gated by -Werror and
    the test suite; the library is what ships)."""
    src_prefix = os.path.join(REPO_ROOT, "src") + os.sep
    files = sorted({entry["file"] for entry in db
                    if os.path.abspath(entry["file"]).startswith(src_prefix)})
    return files


def run_tidy(tidy, build_dir, files, jobs):
    findings = set()
    raw_lines = []
    # clang-tidy has no built-in parallelism over TUs; chunk manually.
    procs = []

    def drain(proc):
        out, _ = proc.communicate()
        for line in out.splitlines():
            match = DIAG_RE.match(line.strip())
            if not match:
                continue
            raw_lines.append(line.strip())
            rel = os.path.relpath(os.path.abspath(match["file"]), REPO_ROOT)
            if rel.startswith(".."):
                continue  # system/third-party header
            findings.add(f"{rel} | {match['check']} | {match['msg']}")

    for path in files:
        procs.append(subprocess.Popen(
            [tidy, "-p", build_dir, "--quiet", path],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True))
        if len(procs) >= jobs:
            drain(procs.pop(0))
    for proc in procs:
        drain(proc)
    return findings, raw_lines


def load_baseline(path):
    if not os.path.isfile(path):
        return set()
    with open(path, encoding="utf-8") as fh:
        return {line.strip() for line in fh
                if line.strip() and not line.startswith("#")}


def write_baseline(path, findings):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# clang-tidy findings baseline — known debt tolerated by\n"
                 "# scripts/clang_tidy_gate.py. One fingerprint per line:\n"
                 "#   path | check | message\n"
                 "# Regenerate with: scripts/clang_tidy_gate.py "
                 "--update-baseline\n")
        for line in sorted(findings):
            fh.write(line + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir",
                        default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--baseline",
                        default=os.path.join(REPO_ROOT, "scripts",
                                             "clang_tidy_baseline.txt"))
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current findings")
    parser.add_argument("--jobs", type=int,
                        default=max(1, (os.cpu_count() or 1)))
    args = parser.parse_args()

    tidy = find_clang_tidy()
    if tidy is None:
        print("clang-tidy gate: SKIP — no clang-tidy binary on PATH "
              "(config .clang-tidy and the baseline remain authoritative "
              "for hosts that have it)")
        return 0

    db = load_compile_db(args.build_dir)
    files = src_files(db)
    if not files:
        sys.exit("error: no src/ TUs in compile_commands.json")

    print(f"clang-tidy gate: {tidy} over {len(files)} TUs "
          f"(jobs={args.jobs})")
    findings, _ = run_tidy(tidy, args.build_dir, files, args.jobs)
    baseline = load_baseline(args.baseline)

    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline updated: {len(findings)} fingerprints -> "
              f"{os.path.relpath(args.baseline, REPO_ROOT)}")
        return 0

    new = sorted(findings - baseline)
    retired = sorted(baseline - findings)
    for line in retired:
        print(f"retired (no longer fires, ok): {line}")
    if new:
        print(f"clang-tidy gate: FAIL — {len(new)} finding(s) not in the "
              "baseline:")
        for line in new:
            print(f"  NEW: {line}")
        print("fix them, or (for accepted debt) rerun with "
              "--update-baseline and commit the diff")
        return 1
    print(f"clang-tidy gate: PASS — {len(findings)} finding(s), "
          f"all baselined ({len(retired)} retired)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
