#!/usr/bin/env python3
"""Merge usne_loadgen daemon rows into a bench_query_throughput report.

Usage: bench_serve_merge.py BENCH_serve.json.tmp daemon_rows.jsonl

bench_query_throughput writes {"bench": ..., "threads": ..., "rows": [...]}.
usne_loadgen --json appends one JSON object per line. This script rewrites
the report in place, adding a "daemon_rows" array holding the loadgen rows
in file order (the check.sh daemon smoke runs workloads deterministically,
so the order — and therefore the grep-based row-count and checksum gates
downstream — is stable).

Row bytes are inserted verbatim, not re-serialized: the gates compare
`grep -o '"checksum": [0-9]*'` output against the committed file, so the
formatting the C++ writers emit must survive the merge untouched.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    report_path, rows_path = sys.argv[1], sys.argv[2]

    with open(report_path, "r", encoding="utf-8") as f:
        report = f.read()
    with open(rows_path, "r", encoding="utf-8") as f:
        rows = [line.strip() for line in f if line.strip()]

    if not rows:
        sys.stderr.write(f"bench_serve_merge: no rows in {rows_path}\n")
        return 1
    for row in rows:
        parsed = json.loads(row)  # refuse to merge malformed loadgen output
        if "checksum" not in parsed or "workload" not in parsed:
            sys.stderr.write(f"bench_serve_merge: row missing keys: {row}\n")
            return 1

    body = report.rstrip()
    if not body.endswith("}"):
        sys.stderr.write(f"bench_serve_merge: {report_path} is not a JSON object\n")
        return 1
    if '"daemon_rows"' in body:
        sys.stderr.write(f"bench_serve_merge: {report_path} already has daemon_rows\n")
        return 1
    body = body[:-1].rstrip()

    merged = (
        body
        + ',\n  "daemon_rows": [\n    '
        + ",\n    ".join(rows)
        + "\n  ]\n}\n"
    )
    json.loads(merged)  # final sanity: the merged report must still parse

    with open(report_path, "w", encoding="utf-8") as f:
        f.write(merged)
    print(f"bench_serve_merge: merged {len(rows)} daemon rows into {report_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
