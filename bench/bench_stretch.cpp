// Experiment E3 — stretch vs the theoretical budget (paper Lemma 2.10,
// Corollaries 2.13/2.14).
//
// Claim: d_H(u,v) <= alpha_ell * d_G(u,v) + beta_ell for every pair, with
// the computed recurrence values (alpha_ell, beta_ell). We report the
// *measured* worst multiplicative and additive errors next to the budget:
// measured <= budget always, and typically far below (the bounds are
// worst-case).

#include <iostream>

#include "bench_common.hpp"
#include "core/emulator_centralized.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

void sweep_exact(const std::string& family, Vertex n, int kappa, double eps,
                 Table& table) {
  const Graph g = gen_family(family, n, 77);
  const auto params = CentralizedParams::compute(g.num_vertices(), kappa, eps);
  CentralizedOptions options;
  options.keep_audit_data = false;
  const auto r = build_emulator_centralized(g, params, options);
  const auto report = evaluate_stretch_exact(
      g, r.h, params.schedule.alpha_bound(), params.schedule.beta_bound());

  table.row()
      .add(family)
      .add(static_cast<std::int64_t>(g.num_vertices()))
      .add(kappa)
      .add(eps, 2)
      .add(params.schedule.alpha_bound(), 3)
      .add(report.max_mult, 3)
      .add(params.schedule.beta_bound())
      .add(report.max_additive)
      .add(report.violations)
      .add(report.underruns);
}

}  // namespace
}  // namespace usne

int main() {
  using namespace usne;
  bench::banner("E3  bench_stretch",
                "Lemma 2.10 / Cor. 2.14: d_H <= alpha*d_G + beta with the "
                "computed (alpha, beta); violations must be 0.");
  Timer total;

  Table table({"family", "n", "kappa", "eps", "alpha(budget)", "mult(max)",
               "beta(budget)", "add(max)", "violations", "underruns"});
  for (const char* family : {"er", "grid", "torus", "ba", "ws", "caveman"}) {
    sweep_exact(family, 400, 4, 0.25, table);
  }
  for (const double eps : {0.1, 0.25, 0.5}) {
    sweep_exact("er", 400, 4, eps, table);
  }
  for (const int kappa : {2, 8, 16}) {
    sweep_exact("torus", 400, kappa, 0.25, table);
  }
  table.print(std::cout, "E3: measured stretch vs budget (exact APSP)");

  // Larger graphs with sampled evaluation.
  Table sampled({"family", "n", "kappa", "mult(max)", "add(max)",
                 "beta(budget)", "violations"});
  for (const Vertex n : {2048, 4096}) {
    const Graph g = gen_family("er", n, 5);
    const auto params = CentralizedParams::compute(g.num_vertices(), 8, 0.25);
    CentralizedOptions options;
    options.keep_audit_data = false;
    const auto r = build_emulator_centralized(g, params, options);
    const auto report =
        evaluate_stretch_sampled(g, r.h, params.schedule.alpha_bound(),
                                 params.schedule.beta_bound(), 24, 9);
    sampled.row()
        .add("er")
        .add(static_cast<std::int64_t>(n))
        .add(8)
        .add(report.max_mult, 3)
        .add(report.max_additive)
        .add(params.schedule.beta_bound())
        .add(report.violations);
  }
  sampled.print(std::cout, "E3b: sampled stretch on larger graphs");

  bench::note("Interpretation: zero violations/underruns everywhere "
              "reproduces the (1+eps, beta) guarantee; measured errors sit "
              "well below the worst-case budget, as expected.");
  std::cout << "\n[E3 done in " << format_double(total.seconds(), 1) << "s]\n";
  return 0;
}
