// Experiment E4 — CONGEST round complexity (paper Corollary 3.11/3.12).
//
// Claim: the distributed deterministic constructions run in O(beta * n^rho)
// rounds, never violate the CONGEST message caps (enforced by the
// simulator — a violation throws), and the emulator leaves BOTH endpoints
// of every edge aware of it.
//
// Every row dispatches through the unified registry (api/build.hpp): the
// workload table names an algorithm ("emulator_congest", "spanner_congest",
// "spanner_congest_em19") and usne::build() does the rest — params, options
// and metering are uniform across variants.
//
// Output: measured rounds (with per-step breakdown) against the schedule
// budget, message totals, endpoint-consistency verdicts, and size bounds.
// With `--threads N` (or `--threads max`) every workload additionally runs
// on the parallel round scheduler: the bench verifies the model counts are
// bit-identical to the serial engine (exit 1 otherwise — determinism is a
// hard guarantee, not a hope) and reports the wall-clock speedup.
// With `--json FILE`, the per-row model counts and the timing records are
// written as JSON so CI (scripts/check.sh) can track the perf trajectory
// across PRs, fail on serial/parallel divergence, and diff the usne_run
// registry smoke against the same rows.

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "api/build.hpp"
#include "bench_common.hpp"
#include "core/params.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

std::int64_t schedule_budget(const DistributedParams& p) {
  std::int64_t budget = 0;
  for (int i = 0; i <= p.schedule.ell(); ++i) {
    const double deg = p.schedule.deg[static_cast<std::size_t>(i)];
    const Dist delta = p.schedule.delta[static_cast<std::size_t>(i)];
    const Dist rul = p.rul[static_cast<std::size_t>(i)];
    const std::int64_t cap = static_cast<std::int64_t>(std::ceil(deg)) + 1;
    budget += 2 * delta * cap;
    budget += p.ruling_base * p.ruling_levels * (2 * delta + 2);
    budget += rul + delta + 1;
    budget += (rul + delta) * (2 * cap + 2) + (rul + delta) + 8 * cap + 16;
  }
  return budget;
}

bool same_counts(const BuildOutput& a, const BuildOutput& b) {
  return a.net.rounds == b.net.rounds && a.net.messages == b.net.messages &&
         a.net.words == b.net.words && a.h().num_edges() == b.h().num_edges();
}

bool same_injected(const BuildOutput& a, const BuildOutput& b) {
  return a.transport.dropped == b.transport.dropped &&
         a.transport.duplicated == b.transport.duplicated &&
         a.transport.delayed == b.transport.delayed &&
         a.transport.delay_rounds == b.transport.delay_rounds;
}

}  // namespace
}  // namespace usne

int main(int argc, char** argv) {
  using namespace usne;
  std::string json_path;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const std::string arg = argv[++i];
      if (arg == "max") {
        // At least 2 so the parallel engine is exercised even on a
        // single-core host (oversubscription is harmless for the
        // determinism check; only the speedup is then uninteresting).
        threads = std::max(2u, std::thread::hardware_concurrency());
      } else {
        char* end = nullptr;
        const long value = std::strtol(arg.c_str(), &end, 10);
        if (end == arg.c_str() || *end != '\0' || value < 0) {
          std::cerr << "error: --threads expects a non-negative integer or "
                       "'max', got '" << arg << "'\n";
          return 2;
        }
        // 0 = hardware concurrency, matching Network::set_execution_threads.
        threads = value == 0
                      ? std::max(1u, std::thread::hardware_concurrency())
                      : static_cast<int>(value);
      }
    } else {
      std::cerr << "usage: bench_congest_rounds [--json FILE] "
                   "[--threads N|max]\n";
      return 2;
    }
  }
  std::string json;         // accumulated per-row model-count records
  std::string json_timing;  // accumulated per-row timing records
  bool diverged = false;

  bench::banner("E4  bench_congest_rounds",
                "Corollary 3.11: deterministic CONGEST constructions in "
                "O(beta * n^rho) rounds; both endpoints know every edge; "
                "zero cap violations.");
  Timer total;

  Table table({"algo", "family", "n", "kappa", "rho", "rounds", "budget",
               "rounds/budget", "messages", "|H|", "size_ok", "endpoints_ok",
               "wall_s", "speedup"});
  const double eps = 0.4;
  struct Row {
    const char* algo;
    const char* family;
    Vertex n;
    int kappa;
    double rho;
  };
  // The emulator rows are the cross-PR perf trajectory of record
  // (BENCH_congest.json); the spanner rows meter the §4 CONGEST variants
  // through the same registry dispatch.
  for (const Row& row :
       {Row{"emulator_congest", "er", 128, 4, 0.49},
        Row{"emulator_congest", "er", 256, 4, 0.49},
        Row{"emulator_congest", "er", 512, 4, 0.49},
        Row{"emulator_congest", "er", 1024, 4, 0.45},
        Row{"emulator_congest", "torus", 256, 4, 0.45},
        Row{"emulator_congest", "ba", 256, 4, 0.49},
        Row{"emulator_congest", "caveman", 256, 4, 0.49},
        Row{"emulator_congest", "er", 512, 8, 0.4},
        Row{"spanner_congest", "er", 128, 4, 0.49},
        Row{"spanner_congest", "er", 256, 4, 0.49},
        Row{"spanner_congest_em19", "er", 128, 4, 0.49},
        Row{"spanner_congest_em19", "er", 256, 4, 0.49}}) {
    const Graph g = gen_family(row.family, row.n, 2024);
    const bool is_emulator = std::strcmp(row.algo, "emulator_congest") == 0;

    BuildSpec spec;
    spec.algorithm = row.algo;
    spec.params.kappa = row.kappa;
    spec.params.eps = eps;
    spec.params.rho = row.rho;
    spec.exec.keep_audit_data = false;

    // Serial reference run (the model counts of record).
    Timer serial_timer;
    spec.exec.num_threads = 1;
    const auto r = build(g, spec);
    const double serial_s = serial_timer.seconds();

    // Parallel run: counts must be bit-identical; wall-clock may improve.
    double parallel_s = serial_s;
    if (threads > 1) {
      Timer parallel_timer;
      spec.exec.num_threads = threads;
      const auto rp = build(g, spec);
      parallel_s = parallel_timer.seconds();
      if (!same_counts(r, rp)) {
        std::cerr << "DIVERGENCE: " << row.algo << " " << row.family
                  << " n=" << row.n
                  << " model counts differ between --threads 1 and --threads "
                  << threads << "\n";
        diverged = true;
      }
    }
    const double speedup = parallel_s > 0 ? serial_s / parallel_s : 1.0;

    // The fixed O(beta * n^rho) schedule budget applies to the emulator
    // construction; the spanner variants run their own (smaller) schedules.
    const std::int64_t budget =
        is_emulator ? schedule_budget(DistributedParams::compute(
                          g.num_vertices(), row.kappa, row.rho, eps))
                    : 0;
    const bool size_ok =
        !is_emulator ||
        r.h().num_edges() <= size_bound_edges(g.num_vertices(), row.kappa);

    auto& cells = table.row()
                      .add(row.algo)
                      .add(row.family)
                      .add(static_cast<std::int64_t>(g.num_vertices()))
                      .add(row.kappa)
                      .add(row.rho, 2)
                      .add(r.net.rounds);
    if (is_emulator) {
      cells.add(budget).add(
          static_cast<double>(r.net.rounds) / static_cast<double>(budget), 3);
    } else {
      cells.add("-").add("-");
    }
    cells.add(r.net.messages)
        .add(r.h().num_edges())
        .add(is_emulator ? (size_ok ? "yes" : "NO") : "-")
        // Only the emulator carries per-node local knowledge to verify;
        // spanner edges are the endpoints' own incident graph edges, so a
        // "yes" there would be vacuous — print "-" instead.
        .add(r.local.empty() ? "-" : (r.endpoints_consistent() ? "yes" : "NO"))
        .add(serial_s, 3)
        .add(threads > 1 ? speedup : 1.0, 2);

    if (!json.empty()) json += ",\n";
    json += "    {\"algo\": \"" + std::string(row.algo) + "\", \"family\": \"" +
            std::string(row.family) +
            "\", \"n\": " + std::to_string(g.num_vertices()) +
            ", \"kappa\": " + std::to_string(row.kappa) +
            ", \"rounds\": " + std::to_string(r.net.rounds) +
            ", \"messages\": " + std::to_string(r.net.messages) +
            ", \"words\": " + std::to_string(r.net.words) +
            ", \"edges\": " + std::to_string(r.h().num_edges()) + "}";
    if (!json_timing.empty()) json_timing += ",\n";
    json_timing += "    {\"algo\": \"" + std::string(row.algo) +
                   "\", \"family\": \"" + std::string(row.family) +
                   "\", \"n\": " + std::to_string(g.num_vertices()) +
                   ", \"wall_s_serial\": " + format_double(serial_s, 4) +
                   ", \"wall_s_parallel\": " + format_double(parallel_s, 4) +
                   ", \"speedup\": " + format_double(speedup, 3) + "}";
  }
  table.print(std::cout, "E4: CONGEST rounds vs schedule budget (threads=" +
                             std::to_string(threads) + ")");

  // --- non-ideal transport rows (robustness / latency workloads) -----------
  // The same constructions driven over the faulty and async delivery models
  // (congest/transport.hpp): seeded drops/duplicates and per-message
  // latencies. The counts here are the deterministic trajectory of record
  // for the degraded-network workloads — a fixed transport seed must
  // reproduce them exactly at any thread count (verified per row below and
  // cross-checked by scripts/check.sh between the serial and parallel JSON).
  std::string json_transport;
  {
    struct TransportRow {
      const char* algo;
      congest::TransportModel model;
      double drop_p;
      double dup_p;
      std::int64_t latency_max;
    };
    Table ttable({"algo", "transport", "drop_p", "dup_p", "lat_max", "rounds",
                  "messages", "|H|", "dropped", "duplicated", "delayed",
                  "wall_s"});
    const Graph g = gen_family("er", 256, 2024);
    for (const TransportRow& row :
         {TransportRow{"emulator_congest", congest::TransportModel::kFaulty,
                       0.05, 0.02, 1},
          TransportRow{"emulator_congest", congest::TransportModel::kAsync,
                       0.0, 0.0, 4},
          TransportRow{"spanner_congest", congest::TransportModel::kFaulty,
                       0.05, 0.02, 1},
          TransportRow{"spanner_congest", congest::TransportModel::kAsync,
                       0.0, 0.0, 4}}) {
      BuildSpec spec;
      spec.algorithm = row.algo;
      spec.params.kappa = 4;
      spec.params.eps = eps;
      spec.params.rho = 0.49;
      spec.exec.keep_audit_data = false;
      spec.exec.transport.model = row.model;
      spec.exec.transport.seed = 7;
      spec.exec.transport.drop_p = row.drop_p;
      spec.exec.transport.dup_p = row.dup_p;
      spec.exec.transport.latency_max = row.latency_max;

      Timer row_timer;
      spec.exec.num_threads = 1;
      const auto r = build(g, spec);
      const double wall_s = row_timer.seconds();
      if (threads > 1) {
        spec.exec.num_threads = threads;
        const auto rp = build(g, spec);
        if (!same_counts(r, rp) || !same_injected(r, rp)) {
          std::cerr << "DIVERGENCE: " << row.algo << " under "
                    << congest::transport_model_name(row.model)
                    << " transport differs between --threads 1 and --threads "
                    << threads << "\n";
          diverged = true;
        }
      }

      const char* const model_name = congest::transport_model_name(row.model);
      ttable.row()
          .add(row.algo)
          .add(model_name)
          .add(row.drop_p, 2)
          .add(row.dup_p, 2)
          .add(row.latency_max)
          .add(r.net.rounds)
          .add(r.net.messages)
          .add(r.h().num_edges())
          .add(r.transport.dropped)
          .add(r.transport.duplicated)
          .add(r.transport.delayed)
          .add(wall_s, 3);

      if (!json_transport.empty()) json_transport += ",\n";
      json_transport +=
          "    {\"algo\": \"" + std::string(row.algo) + "\", \"transport\": \"" +
          std::string(model_name) + "\", \"family\": \"er\", \"n\": " +
          std::to_string(g.num_vertices()) + ", \"kappa\": 4" +
          ", \"transport_seed\": 7, \"drop_p\": " + format_double(row.drop_p, 2) +
          ", \"dup_p\": " + format_double(row.dup_p, 2) +
          ", \"latency_max\": " + std::to_string(row.latency_max) +
          ", \"rounds\": " + std::to_string(r.net.rounds) +
          ", \"messages\": " + std::to_string(r.net.messages) +
          ", \"words\": " + std::to_string(r.net.words) +
          ", \"edges\": " + std::to_string(r.h().num_edges()) +
          ", \"dropped\": " + std::to_string(r.transport.dropped) +
          ", \"duplicated\": " + std::to_string(r.transport.duplicated) +
          ", \"delayed\": " + std::to_string(r.transport.delayed) +
          ", \"delay_rounds\": " + std::to_string(r.transport.delay_rounds) +
          "}";
    }
    ttable.print(std::cout,
                 "E4c: constructions under non-ideal transports (er, n=256, "
                 "transport seed 7)");
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"congest_rounds\",\n  \"threads\": " << threads
        << ",\n  \"rows\": [\n"
        << json << "\n  ],\n  \"transport_rows\": [\n"
        << json_transport << "\n  ],\n  \"timing\": [\n"
        << json_timing << "\n  ]\n}\n";
    std::cout << "\n[wrote " << json_path << "]\n";
  }

  // Per-step breakdown for one representative run.
  {
    const Graph g = gen_family("er", 512, 2024);
    BuildSpec spec;
    spec.algorithm = "emulator_congest";
    spec.params = {0, 4, eps, 0.49, false};
    spec.exec.keep_audit_data = false;
    const auto r = build(g, spec);
    Table steps({"phase", "|P_i|", "popular", "|U_i|", "detect", "ruling",
                 "forest", "backtrack", "interconnect", "total"});
    for (const auto& p : r.result.phases) {
      steps.row()
          .add(p.phase)
          .add(p.clusters_in)
          .add(p.popular)
          .add(p.unclustered)
          .add(p.rounds_detect)
          .add(p.rounds_ruling)
          .add(p.rounds_forest)
          .add(p.rounds_backtrack)
          .add(p.rounds_interconnect)
          .add(p.rounds);
    }
    steps.print(std::cout, "E4b: per-phase round breakdown (er, n=512)");
  }

  bench::note("Interpretation: rounds/budget < 1 in every emulator row shows "
              "the fixed O(beta*n^rho) schedule is respected; 'endpoints_ok' "
              "verifies the paper's distinctive emulator obligation "
              "(both endpoints of every edge know it). Any cap violation "
              "would have aborted the run. With --threads N the same model "
              "counts are produced by the parallel engine (verified here), "
              "so 'speedup' is pure wall-clock.");
  std::cout << "\n[E4 done in " << format_double(total.seconds(), 1) << "s]\n";
  if (diverged) {
    std::cerr << "\nFAIL: serial vs parallel model counts diverged\n";
    return 1;
  }
  return 0;
}
