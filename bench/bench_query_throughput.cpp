// Experiment E9 — query-serving throughput (the paper's §1.1 application
// at serving scale).
//
// Claim: batched multi-threaded serving through serve::QueryEngine beats
// the legacy serial oracle loop (single-entry SSSP cache, one query at a
// time) by a wide margin on interleaved-source streams (zipf, uniform,
// point_vs_all) — the sharded LRU cache pays one Dial SSSP per distinct
// source where the single-entry cache thrashes. On a perfectly grouped
// stream the single-entry cache is already SSSP-optimal; the engine's
// value there is thread-scaling and thread-safety, not fewer SSSPs (see
// the interpretation note).
//
// Hard gates (exit 1, not hopes):
//   * cached, uncached, serial and multi-threaded answers are bit-identical
//     per query (and therefore share one checksum);
//   * the engine's answers equal the legacy oracle loop's answers.
//
// With --json FILE the per-row serving records are written as
// BENCH_serve.json — the cross-PR throughput trajectory; scripts/check.sh
// diffs the row *counts* (wall times move with the hardware, the scenario
// list must not drift silently).

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/build.hpp"
#include "bench_common.hpp"
#include "path/dijkstra.hpp"
#include "serve/query_engine.hpp"
#include "serve/stats.hpp"
#include "serve/workload.hpp"

namespace usne {
namespace {

/// The pre-serve oracle loop, verbatim semantics: one mutable single-entry
/// SSSP cache, queries answered one at a time on one thread. The baseline
/// every engine row is measured against.
class LegacySerialOracle {
 public:
  explicit LegacySerialOracle(const WeightedGraph& h) : h_(&h) {}

  Dist query(Vertex u, Vertex v) {
    if (cached_source_ && *cached_source_ == v) {
      return cached_dist_[static_cast<std::size_t>(u)];
    }
    if (!cached_source_ || *cached_source_ != u) {
      cached_dist_ = dial_sssp(*h_, u);
      cached_source_ = u;
      ++sssp_runs_;
    }
    return cached_dist_[static_cast<std::size_t>(v)];
  }

  /// Single-source (all) query: the legacy loop pays a fresh SSSP, folded
  /// to the same checksum the engine's batch records.
  Dist query_all_checksum(Vertex u) {
    ++sssp_runs_;
    return serve::checksum_fold(dial_sssp(*h_, u));
  }

  std::int64_t sssp_runs() const { return sssp_runs_; }

 private:
  const WeightedGraph* h_;
  std::optional<Vertex> cached_source_;
  std::vector<Dist> cached_dist_;
  std::int64_t sssp_runs_ = 0;
};

}  // namespace
}  // namespace usne

int main(int argc, char** argv) {
  using namespace usne;
  std::string json_path;
  int threads = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const std::string arg = argv[++i];
      threads = arg == "max" ? 0 : static_cast<int>(std::stol(arg));
    } else {
      std::cerr << "usage: bench_query_throughput [--json FILE] "
                   "[--threads N|max]\n";
      return 2;
    }
  }
  if (threads == 0) {
    threads = static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
  }

  bench::banner("E9  bench_query_throughput",
                "Serving the emulator: multi-threaded batched queries with a "
                "sharded SSSP cache vs the legacy serial oracle loop; "
                "cached/uncached/parallel answers bit-identical.");
  Timer total;
  bool failed = false;

  // One preprocessed emulator serves every workload row (that is the
  // serving scenario: build once, answer forever).
  const Vertex n = 2048;
  const Graph g = gen_connected_gnm(n, 8 * static_cast<std::int64_t>(n), 2024);
  BuildSpec spec;
  spec.algorithm = "emulator_fast";
  spec.params = {0, 22, 0.25, 0.3, false};
  spec.exec.keep_audit_data = false;
  const BuildOutput built = build(g, spec);

  struct Row {
    serve::WorkloadKind kind;
    std::int64_t queries;
  };
  Table table({"workload", "queries", "oracle_qps", "engine1_qps",
               "engineT_qps", "speedup", "sssp_oracle", "sssp_engine",
               "hit_rate", "identical"});
  std::string json;
  for (const Row& row : {Row{serve::WorkloadKind::kZipf, 20000},
                         Row{serve::WorkloadKind::kUniform, 4000},
                         Row{serve::WorkloadKind::kGrouped, 20000},
                         Row{serve::WorkloadKind::kPointVsAll, 4000}}) {
    serve::WorkloadSpec workload;
    workload.kind = row.kind;
    workload.num_queries = row.queries;
    workload.seed = 42;
    const std::vector<serve::Query> queries =
        serve::generate_workload(n, workload);

    // Baseline: the legacy serial oracle loop (all-queries answered by one
    // SSSP + checksum fold, matching the engine's batch semantics).
    serve::QueryEngine uncached(built, {.cache_mb = 0});
    LegacySerialOracle oracle(built.h());
    std::vector<Dist> oracle_answers(queries.size());
    Timer oracle_timer;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const serve::Query& q = queries[i];
      oracle_answers[i] = q.all ? oracle.query_all_checksum(q.u)
                                : oracle.query(q.u, q.v);
    }
    const double oracle_s = oracle_timer.seconds();
    const double oracle_qps =
        oracle_s > 0 ? static_cast<double>(queries.size()) / oracle_s : 0;

    // Engine rows: serial, multi-threaded, and uncached reference. The
    // parallel batch gets its own cold engine so its SSSP count and qps are
    // not flattered by the serial batch having warmed the cache.
    serve::QueryEngine engine(built, {.cache_mb = 64});
    serve::QueryEngine cold(built, {.cache_mb = 64});
    const serve::BatchResult serial = engine.serve(queries, 1);
    const serve::BatchResult parallel = cold.serve(queries, threads);
    const serve::BatchResult reference = uncached.serve(queries, threads);

    const bool identical = serial.answers == parallel.answers &&
                           serial.answers == reference.answers &&
                           serial.answers == oracle_answers;
    if (!identical) {
      std::cerr << "FAIL: answers diverge (cached/uncached/serial/parallel/"
                   "legacy) on workload "
                << serve::workload_kind_name(row.kind) << "\n";
      failed = true;
    }

    const double speedup = parallel.qps > 0 && oracle_qps > 0
                               ? parallel.qps / oracle_qps
                               : 0;
    const std::int64_t batch_queries =
        parallel.point_queries + parallel.all_queries;
    const double hit_rate =
        batch_queries > 0 ? static_cast<double>(parallel.cache.hits) /
                                static_cast<double>(batch_queries)
                          : 0;
    table.row()
        .add(serve::workload_kind_name(row.kind))
        .add(row.queries)
        .add(oracle_qps, 0)
        .add(serial.qps, 0)
        .add(parallel.qps, 0)
        .add(speedup, 2)
        .add(oracle.sssp_runs())
        .add(parallel.cache.sssp_runs)
        .add(hit_rate, 3)
        .add(identical ? "yes" : "NO");

    if (!json.empty()) json += ",\n";
    json += "    {\"workload\": \"" +
            std::string(serve::workload_kind_name(row.kind)) +
            "\", \"n\": " + std::to_string(n) +
            ", \"queries\": " + std::to_string(row.queries) +
            ", \"workload_seed\": 42, \"threads\": " + std::to_string(threads) +
            ", \"checksum\": " + std::to_string(parallel.checksum) +
            ", \"sssp_oracle\": " + std::to_string(oracle.sssp_runs()) +
            ", \"sssp_engine\": " + std::to_string(parallel.cache.sssp_runs) +
            ", \"oracle_qps\": " + format_double(oracle_qps, 0) +
            ", \"engine_serial_qps\": " + format_double(serial.qps, 0) +
            ", \"engine_parallel_qps\": " + format_double(parallel.qps, 0) +
            ", \"speedup_vs_oracle\": " + format_double(speedup, 2) + "}";
  }
  table.print(std::cout, "E9: serving throughput (er-connected, n=2048, "
                         "|H| = " + std::to_string(built.h().num_edges()) +
                         ", threads=" + std::to_string(threads) + ")");

  // Answer-quality spot check on the zipf workload.
  {
    serve::WorkloadSpec workload;
    workload.kind = serve::WorkloadKind::kZipf;
    workload.num_queries = 512;
    workload.seed = 42;
    serve::QueryEngine engine(built, {});
    const auto queries = serve::generate_workload(n, workload);
    const serve::StretchSample stretch =
        serve::sample_query_stretch(g, engine, queries, 128);
    std::cout << "stretch sample: " << stretch.pairs << " pairs, "
              << stretch.violations << " violations, " << stretch.underruns
              << " underruns, max additive " << stretch.max_additive << "\n";
    if (!stretch.ok()) {
      std::cerr << "FAIL: stretch guarantee violated while serving\n";
      failed = true;
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"query_throughput\",\n  \"threads\": " << threads
        << ",\n  \"rows\": [\n" << json << "\n  ]\n}\n";
    std::cout << "\n[wrote " << json_path << "]\n";
  }

  bench::note("Interpretation: 'speedup' is engineT_qps / oracle_qps, both "
              "cold-cache. On interleaved-source streams (zipf, uniform, "
              "point_vs_all) the single-entry legacy cache thrashes — one "
              "SSSP per query — while the sharded cache pays one per "
              "distinct source; that dominates any thread count. On a "
              "perfectly grouped stream the single-entry cache is already "
              "optimal, so the engine's value there is thread-scaling and "
              "thread-safety, not fewer SSSPs. 'identical' certifies "
              "cached, uncached, serial, parallel and legacy answers agree "
              "bit-for-bit.");
  std::cout << "\n[E9 done in " << format_double(total.seconds(), 1) << "s]\n";
  return failed ? 1 : 0;
}
