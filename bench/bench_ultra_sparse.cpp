// Experiment E2 — the ultra-sparse regime (paper Corollary 2.15 / 3.12).
//
// Claim: with kappa = omega(log n), the emulator has n + o(n) edges. We set
// kappa = ceil(log2(n) * log2(log2(n))) and track the excess (|H| - n)/n as
// n grows: the series must decrease toward 0.
//
// Uses the fast §3.3 builder, which scales to the largest n here.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/emulator_fast.hpp"
#include "core/params.hpp"
#include "eval/metrics.hpp"
#include "util/math.hpp"

int main() {
  using namespace usne;
  bench::banner("E2  bench_ultra_sparse",
                "Corollary 2.15/3.12: kappa = omega(log n) gives an emulator "
                "with n + o(n) edges.");
  Timer total;

  Table table({"n", "kappa", "|E(G)|", "|H|", "bound", "(|H|-n)/n",
               "(bound-n)/n", "build_s"});
  double prev_excess = 1e9;
  bool decreasing = true;
  for (const Vertex n : {1024, 2048, 4096, 8192, 16384, 32768, 65536}) {
    const double log_n = std::log2(static_cast<double>(n));
    const int kappa = static_cast<int>(std::ceil(log_n * std::log2(log_n)));
    const Graph g = gen_connected_gnm(n, 6L * n, 1234 + n);
    const auto params = DistributedParams::compute(n, kappa, 0.3, 0.25);
    FastOptions options;
    options.keep_audit_data = false;

    Timer timer;
    const auto r = build_emulator_fast(g, params, options);
    const double secs = timer.seconds();

    const double excess = ultra_sparse_excess(r.h, n);
    const double bound_excess =
        static_cast<double>(size_bound_edges(n, kappa) - n) /
        static_cast<double>(n);
    if (excess > prev_excess + 0.01) decreasing = false;
    prev_excess = excess;

    table.row()
        .add(static_cast<std::int64_t>(n))
        .add(kappa)
        .add(g.num_edges())
        .add(r.h.num_edges())
        .add(size_bound_edges(n, kappa))
        .add(excess, 4)
        .add(bound_excess, 4)
        .add(secs, 2);
  }
  table.print(std::cout, "E2: ultra-sparse excess vs n (ER, avg degree 12)");

  bench::note(decreasing
                  ? "Shape check PASSED: the excess decreases with n (o(n) "
                    "behaviour), matching Corollary 2.15."
                  : "Shape check FAILED: excess did not decrease with n.");
  std::cout << "\n[E2 done in " << format_double(total.seconds(), 1) << "s]\n";
  return 0;
}
