// Experiment E6 — construction time scaling (paper Theorem 3.13, §2.2.3).
//
// Claim: the naive Algorithm 1 runs in O(sum_i |P_i| * |E|) time, while the
// §3.3 fast centralized simulation runs in O~(|E| * n^rho) — asymptotically
// faster for small rho. google-benchmark timings over growing n exhibit the
// growth-rate difference.

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/emulator_centralized.hpp"
#include "core/emulator_fast.hpp"
#include "core/params.hpp"
#include "graph/generators.hpp"

namespace usne {
namespace {

// Workload note: kappa = 4 with average degree ~ deg_0 = n^(1/4) produces
// mixed popularity, so many clusters survive into phase 1 and the naive
// Algorithm 1 pays its Sigma |P_i| * |E| exploration cost (paper eq. 14).
// The fast §3.3 builder replaces per-center explorations by capped
// detections and scales as O~(|E| * n^rho): its curve grows visibly slower.

void BM_Algorithm1(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = gen_connected_gnm(n, 6L * n, 9);
  const auto params = CentralizedParams::compute(n, 4, 0.25);
  CentralizedOptions options;
  options.keep_audit_data = false;
  for (auto _ : state) {
    auto r = build_emulator_centralized(g, params, options);
    benchmark::DoNotOptimize(r.h.num_edges());
  }
  state.counters["edges"] =
      static_cast<double>(build_emulator_centralized(g, params, options).h.num_edges());
}
BENCHMARK(BM_Algorithm1)->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_FastCentralized(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = gen_connected_gnm(n, 6L * n, 9);
  const auto params = DistributedParams::compute(n, 4, 0.35, 0.25);
  FastOptions options;
  options.keep_audit_data = false;
  for (auto _ : state) {
    auto r = build_emulator_fast(g, params, options);
    benchmark::DoNotOptimize(r.h.num_edges());
  }
  state.counters["edges"] =
      static_cast<double>(build_emulator_fast(g, params, options).h.num_edges());
}
BENCHMARK(BM_FastCentralized)->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

// Adversarial workload for the naive algorithm (paper eq. 14 worst case):
// cliques of size ~ n^(1/4) collapse in phase 0, leaving ~n/s phase-1
// clusters, while random chords keep the diameter tiny — so every phase-1
// exploration of Algorithm 1 covers the whole graph: Sigma |P_i| * |E|
// materializes. The fast builder's capped detection is immune.
Graph make_blob_chord_graph(Vertex n) {
  const Vertex s = static_cast<Vertex>(
      std::ceil(std::pow(static_cast<double>(n), 0.25))) + 2;
  const Vertex cliques = n / s;
  Graph base = gen_caveman(cliques, s);
  GraphBuilder b(base.num_vertices());
  for (const Edge& e : base.edges()) b.add_edge(e.u, e.v);
  Graph chords = gen_gnm(base.num_vertices(), base.num_vertices() / 4, 4242);
  for (const Edge& e : chords.edges()) b.add_edge(e.u, e.v);
  return b.build();
}

void BM_Algorithm1_Adversarial(benchmark::State& state) {
  const Graph g = make_blob_chord_graph(static_cast<Vertex>(state.range(0)));
  const auto params =
      CentralizedParams::compute(g.num_vertices(), 4, 0.25);
  CentralizedOptions options;
  options.keep_audit_data = false;
  for (auto _ : state) {
    auto r = build_emulator_centralized(g, params, options);
    benchmark::DoNotOptimize(r.h.num_edges());
  }
}
BENCHMARK(BM_Algorithm1_Adversarial)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_Fast_Adversarial(benchmark::State& state) {
  const Graph g = make_blob_chord_graph(static_cast<Vertex>(state.range(0)));
  const auto params =
      DistributedParams::compute(g.num_vertices(), 4, 0.35, 0.25);
  FastOptions options;
  options.keep_audit_data = false;
  for (auto _ : state) {
    auto r = build_emulator_fast(g, params, options);
    benchmark::DoNotOptimize(r.h.num_edges());
  }
}
BENCHMARK(BM_Fast_Adversarial)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_UltraSparseBuild(benchmark::State& state) {
  // The Corollary 2.15 regime: kappa ~ log n * log log n.
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = gen_connected_gnm(n, 6L * n, 3);
  const double log_n = std::log2(static_cast<double>(n));
  const int kappa = static_cast<int>(std::ceil(log_n * std::log2(log_n)));
  const auto params = DistributedParams::compute(n, kappa, 0.3, 0.25);
  FastOptions options;
  options.keep_audit_data = false;
  for (auto _ : state) {
    auto r = build_emulator_fast(g, params, options);
    benchmark::DoNotOptimize(r.h.num_edges());
  }
}
BENCHMARK(BM_UltraSparseBuild)->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace usne

BENCHMARK_MAIN();
