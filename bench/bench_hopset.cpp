// Experiment E9 — emulators as hopsets (paper §1.1 / related work
// [EN16a, HP17]).
//
// Claim (qualitative, from the paper's introduction): near-additive
// emulators are intimately connected to hopsets, the object powering
// parallel/distributed approximate shortest paths. Measured: the number of
// Bellman–Ford rounds (hops) needed to bring every sampled pair within the
// (1+eps, beta) budget drops dramatically once the emulator edges are
// available as shortcuts — while the emulator adds only ~n edges.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/emulator_centralized.hpp"
#include "core/params.hpp"
#include "hopset/hopset.hpp"
#include "util/math.hpp"

int main() {
  using namespace usne;
  bench::banner("E9  bench_hopset",
                "Emulators as hopsets: hop-limited Bellman-Ford reaches the "
                "(1+eps, beta) budget in far fewer rounds with H.");
  Timer total;

  Table table({"family", "n", "diam-ish", "|H|", "hopbound w/o H",
               "hopbound with H", "reduction"});
  struct Row {
    const char* family;
    Vertex n;
  };
  for (const Row& row : {Row{"torus", 1024}, Row{"grid", 1024},
                         Row{"cycle", 512}, Row{"ws", 1024}}) {
    const Graph g = gen_family(row.family, row.n, 5);
    // kappa ~ log n: the ultra-sparse regime, where the phases build a
    // hierarchy of progressively longer weighted shortcuts — the hopset
    // structure. (At small kappa on bounded-degree graphs nothing is ever
    // popular and H = G: no shortcuts at all.)
    const int kappa = static_cast<int>(std::ceil(std::log2(g.num_vertices())));
    const auto params = CentralizedParams::compute(g.num_vertices(), kappa, 0.25);
    CentralizedOptions options;
    options.keep_audit_data = false;
    const auto r = build_emulator_centralized(g, params, options);

    const std::vector<Vertex> sources = {0, g.num_vertices() / 3,
                                         2 * g.num_vertices() / 5};
    const double eps = params.schedule.alpha_bound() - 1.0;
    const Dist beta = params.schedule.beta_bound();
    const int max_hops = 2 * g.num_vertices();

    const WeightedGraph empty(g.num_vertices());
    const auto without = measure_hopbound(g, empty, sources, eps, beta, max_hops);
    const auto with = measure_hopbound(g, r.h, sources, eps, beta, max_hops);

    table.row()
        .add(row.family)
        .add(static_cast<std::int64_t>(g.num_vertices()))
        .add(static_cast<std::int64_t>(without.hopbound))  // ~ the hop radius
        .add(r.h.num_edges())
        .add(without.hopbound)
        .add(with.hopbound)
        .add(with.hopbound > 0
                 ? static_cast<double>(without.hopbound) /
                       static_cast<double>(with.hopbound)
                 : 0.0,
             1);
  }
  table.print(std::cout, "E9: hopbound to reach the (1+eps, beta) budget");

  bench::note("Interpretation: without H the hopbound equals the hop "
              "radius of the source set (distances need that many BF "
              "rounds); with the emulator's weighted shortcuts the same "
              "accuracy needs a small fraction of the rounds. This is the "
              "emulator/hopset connection the paper's introduction and "
              "survey [EN20] discuss.");
  std::cout << "\n[E9 done in " << format_double(total.seconds(), 1) << "s]\n";
  return 0;
}
