// Experiment E5 — spanner size vs the [EM19] baseline (paper Corollary 4.4).
//
// Claim: the §4 construction builds (1+eps, beta)-spanners with
// O(n^(1+1/kappa)) edges, improving [EM19]'s O(beta * n^(1+1/kappa)).
// At their sparsest the new spanners have O(n log log n) edges.
//
// Both variants (and their CONGEST executions) dispatch through the unified
// registry (api/build.hpp) — the row loop names algorithms, usne::build()
// does the rest.
//
// Output: edge counts of both spanners across n and kappa; the gap must be
// >= 0 everywhere and widen with n.

#include <cmath>
#include <iostream>

#include "api/build.hpp"
#include "bench_common.hpp"
#include "core/spanner.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

BuildSpec spanner_spec(const char* algo, int kappa, double rho, double eps) {
  BuildSpec spec;
  spec.algorithm = algo;
  spec.params.kappa = kappa;
  spec.params.rho = rho;
  spec.params.eps = eps;
  spec.exec.keep_audit_data = false;
  return spec;
}

}  // namespace
}  // namespace usne

int main() {
  using namespace usne;
  bench::banner("E5  bench_spanner",
                "Corollary 4.4: spanners with O(n^(1+1/kappa)) edges vs "
                "[EM19]'s O(beta * n^(1+1/kappa)).");
  Timer total;

  const double eps = 0.25;
  Table table({"n", "kappa", "rho", "|E(G)|", "ours", "EM19", "EM19-ours",
               "bound n^(1+1/k)", "n*loglog(n)"});

  std::int64_t prev_gap = -1;
  bool gap_nonneg = true;
  for (const Vertex n : {1024, 2048, 4096, 8192, 16384}) {
    const int kappa = 8;
    const double rho = 0.4;
    const Graph g = gen_connected_gnm(n, 4L * n, 31 + n);
    const auto ours = build(g, spanner_spec("spanner", kappa, rho, eps));
    const auto em19 = build(g, spanner_spec("spanner_em19", kappa, rho, eps));
    const std::int64_t gap = em19.h().num_edges() - ours.h().num_edges();
    if (gap < 0) gap_nonneg = false;
    prev_gap = gap;
    const double loglog = std::log2(std::log2(static_cast<double>(n)));
    table.row()
        .add(static_cast<std::int64_t>(n))
        .add(kappa)
        .add(rho, 2)
        .add(g.num_edges())
        .add(ours.h().num_edges())
        .add(em19.h().num_edges())
        .add(gap)
        .add(size_bound_edges(n, kappa))
        .add(static_cast<std::int64_t>(n * loglog));
  }
  (void)prev_gap;
  table.print(std::cout, "E5: spanner sizes, ours vs EM19 (ER, kappa=8)");

  // Kappa sweep at fixed n, including the sparsest regime.
  Table ksweep({"kappa", "ours", "EM19", "bound", "ours<=EM19"});
  const Vertex n = 4096;
  const Graph g = gen_connected_gnm(n, 4L * n, 7);
  for (const int kappa : {4, 8, 16, 24}) {
    const double rho = std::max(0.3, 1.5 / kappa);
    const auto ours = build(g, spanner_spec("spanner", kappa, rho, eps));
    const auto em19 = build(g, spanner_spec("spanner_em19", kappa, rho, eps));
    ksweep.row()
        .add(kappa)
        .add(ours.h().num_edges())
        .add(em19.h().num_edges())
        .add(size_bound_edges(n, kappa))
        .add(ours.h().num_edges() <= em19.h().num_edges() ? "yes" : "NO");
  }
  ksweep.print(std::cout, "E5b: kappa sweep at n=4096");

  // CONGEST execution: Corollary 4.4 promises the same O(beta * n^rho)
  // running time as the emulator construction; meter both variants.
  Table congest_t({"family", "n", "ours rounds", "EM19 rounds", "ours |H|",
                   "EM19 |H|", "subgraph"});
  for (const char* family : {"er", "caveman", "torus"}) {
    const Graph g = gen_family(family, 256, 77);
    const auto ours =
        build(g, spanner_spec("spanner_congest", 4, 0.45, 0.4));
    const auto em19 =
        build(g, spanner_spec("spanner_congest_em19", 4, 0.45, 0.4));
    congest_t.row()
        .add(family)
        .add(static_cast<std::int64_t>(g.num_vertices()))
        .add(ours.net.rounds)
        .add(em19.net.rounds)
        .add(ours.h().num_edges())
        .add(em19.h().num_edges())
        .add(is_subgraph(ours.h(), g) && is_subgraph(em19.h(), g) ? "yes"
                                                                  : "NO");
  }
  congest_t.print(std::cout, "E5c: CONGEST execution (rounds metered, caps "
                             "enforced), n=256");

  bench::note(gap_nonneg
                  ? "Shape check PASSED: ours <= EM19 in every configuration "
                    "(the Corollary 4.4 improvement)."
                  : "Shape check FAILED: EM19 beat ours somewhere.");
  bench::note("Note: at laptop scale both spanners are near-tree-sized on "
              "sparse inputs; the separation is the EM19 beta-factor, which "
              "grows with n (see the EM19-ours column trend).");
  std::cout << "\n[E5 done in " << format_double(total.seconds(), 1) << "s]\n";
  return 0;
}
