// Experiment E5 — spanner size vs the [EM19] baseline (paper Corollary 4.4).
//
// Claim: the §4 construction builds (1+eps, beta)-spanners with
// O(n^(1+1/kappa)) edges, improving [EM19]'s O(beta * n^(1+1/kappa)).
// At their sparsest the new spanners have O(n log log n) edges.
//
// Output: edge counts of both spanners across n and kappa; the gap must be
// >= 0 everywhere and widen with n.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/params.hpp"
#include "core/spanner.hpp"
#include "core/spanner_distributed.hpp"
#include "util/math.hpp"

int main() {
  using namespace usne;
  bench::banner("E5  bench_spanner",
                "Corollary 4.4: spanners with O(n^(1+1/kappa)) edges vs "
                "[EM19]'s O(beta * n^(1+1/kappa)).");
  Timer total;

  const double eps = 0.25;
  Table table({"n", "kappa", "rho", "|E(G)|", "ours", "EM19", "EM19-ours",
               "bound n^(1+1/k)", "n*loglog(n)"});
  SpannerOptions options;
  options.keep_audit_data = false;

  std::int64_t prev_gap = -1;
  bool gap_nonneg = true;
  for (const Vertex n : {1024, 2048, 4096, 8192, 16384}) {
    const int kappa = 8;
    const double rho = 0.4;
    const Graph g = gen_connected_gnm(n, 4L * n, 31 + n);
    const auto ours_p = SpannerParams::compute(n, kappa, rho, eps);
    const auto em19_p = DistributedParams::compute(n, kappa, rho, eps);
    const auto ours = build_spanner(g, ours_p, options);
    const auto em19 = build_spanner_em19(g, em19_p, options);
    const std::int64_t gap = em19.h.num_edges() - ours.h.num_edges();
    if (gap < 0) gap_nonneg = false;
    prev_gap = gap;
    const double loglog = std::log2(std::log2(static_cast<double>(n)));
    table.row()
        .add(static_cast<std::int64_t>(n))
        .add(kappa)
        .add(rho, 2)
        .add(g.num_edges())
        .add(ours.h.num_edges())
        .add(em19.h.num_edges())
        .add(gap)
        .add(size_bound_edges(n, kappa))
        .add(static_cast<std::int64_t>(n * loglog));
  }
  (void)prev_gap;
  table.print(std::cout, "E5: spanner sizes, ours vs EM19 (ER, kappa=8)");

  // Kappa sweep at fixed n, including the sparsest regime.
  Table ksweep({"kappa", "ours", "EM19", "bound", "ours<=EM19"});
  const Vertex n = 4096;
  const Graph g = gen_connected_gnm(n, 4L * n, 7);
  for (const int kappa : {4, 8, 16, 24}) {
    const double rho = std::max(0.3, 1.5 / kappa);
    const auto ours_p = SpannerParams::compute(n, kappa, rho, eps);
    const auto em19_p = DistributedParams::compute(n, kappa, rho, eps);
    const auto ours = build_spanner(g, ours_p, options);
    const auto em19 = build_spanner_em19(g, em19_p, options);
    ksweep.row()
        .add(kappa)
        .add(ours.h.num_edges())
        .add(em19.h.num_edges())
        .add(size_bound_edges(n, kappa))
        .add(ours.h.num_edges() <= em19.h.num_edges() ? "yes" : "NO");
  }
  ksweep.print(std::cout, "E5b: kappa sweep at n=4096");

  // CONGEST execution: Corollary 4.4 promises the same O(beta * n^rho)
  // running time as the emulator construction; meter both variants.
  Table congest_t({"family", "n", "ours rounds", "EM19 rounds", "ours |H|",
                   "EM19 |H|", "subgraph"});
  for (const char* family : {"er", "caveman", "torus"}) {
    const Graph g = gen_family(family, 256, 77);
    const auto ours_p = SpannerParams::compute(g.num_vertices(), 4, 0.45, 0.4);
    const auto em19_p =
        DistributedParams::compute(g.num_vertices(), 4, 0.45, 0.4);
    const auto ours = build_spanner_congest(g, ours_p, false);
    const auto em19 = build_spanner_congest_em19(g, em19_p, false);
    congest_t.row()
        .add(family)
        .add(static_cast<std::int64_t>(g.num_vertices()))
        .add(ours.net.rounds)
        .add(em19.net.rounds)
        .add(ours.base.h.num_edges())
        .add(em19.base.h.num_edges())
        .add(is_subgraph(ours.base.h, g) && is_subgraph(em19.base.h, g)
                 ? "yes"
                 : "NO");
  }
  congest_t.print(std::cout, "E5c: CONGEST execution (rounds metered, caps "
                             "enforced), n=256");

  bench::note(gap_nonneg
                  ? "Shape check PASSED: ours <= EM19 in every configuration "
                    "(the Corollary 4.4 improvement)."
                  : "Shape check FAILED: EM19 beat ours somewhere.");
  bench::note("Note: at laptop scale both spanners are near-tree-sized on "
              "sparse inputs; the separation is the EM19 beta-factor, which "
              "grows with n (see the EM19-ours column trend).");
  std::cout << "\n[E5 done in " << format_double(total.seconds(), 1) << "s]\n";
  return 0;
}
