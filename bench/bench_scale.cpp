// Experiment E10 — million-vertex scale tier.
//
// Everything below the serving layer was rebuilt for this tier: streamed
// generators (graph/stream_gen.hpp) that materialize one edge array and one
// CSR, flat-frontier SSSP kernels (path/sssp_kernel.hpp) over the packed
// WeightedGraph::Csr, and optional degree-sorted renumbering inside the
// engine. This bench is the proof at n in {2^17, 2^20}: wall time, peak
// RSS, generation edges/sec, SSSP relaxation throughput and serving qps per
// kernel configuration, written as BENCH_scale.json.
//
// Hard gates (exit 1, not hopes):
//   * serial and multi-threaded serving answers are bit-identical;
//   * dial, delta-stepping and degree-sorted delta configurations all
//     produce the same answer checksum (the kernels are exact — a faster
//     kernel that changes one distance is a broken kernel).
//
// The serving workload is H = G with deterministic weights in [1, 16]
// (seeded per edge): the scale tier exercises the kernels and generators,
// not the emulator constructions, which keep their own tiers (E1..E9).
// Grouped sources keep the SSSP count bounded, so the row cost is a handful
// of full-graph SSSPs per configuration — the serving regime the cache and
// source memo are built for.
//
// scripts/check.sh runs `--smoke` (n = 2^12) as the CI gate and pins the
// committed BENCH_scale.json row inventory; the full tier is regenerated
// manually when the trajectory should move.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "graph/stream_gen.hpp"
#include "graph/weighted_graph.hpp"
#include "serve/query_engine.hpp"
#include "serve/workload.hpp"
#include "util/mem.hpp"
#include "util/rng.hpp"

namespace usne {
namespace {

/// Deterministic per-edge weight in [1, 16]: hashes the edge key so the
/// weight assignment is independent of generation order.
Dist edge_weight_of(Vertex u, Vertex v) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
      static_cast<std::uint32_t>(v);
  return 1 + static_cast<Dist>(SplitMix64(key).next() % 16);
}

struct Config {
  const char* label;
  SsspKernel kernel;
  serve::Renumber renumber;
};

}  // namespace
}  // namespace usne

int main(int argc, char** argv) {
  using namespace usne;
  std::string json_path;
  bool smoke = false;
  int threads = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const std::string arg = argv[++i];
      threads = arg == "max" ? 0 : static_cast<int>(std::stol(arg));
    } else {
      std::cerr << "usage: bench_scale [--json FILE] [--smoke] "
                   "[--threads N|max]\n";
      return 2;
    }
  }
  if (threads == 0) {
    threads = static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
  }

  bench::banner("E10 bench_scale",
                "Million-vertex tier: streamed generation + flat-frontier "
                "SSSP kernels; dial/delta/degree-sorted answers must share "
                "one checksum, serial == parallel.");
  Timer total;
  bool failed = false;

  const std::vector<Vertex> sizes =
      smoke ? std::vector<Vertex>{Vertex{1} << 12}
            : std::vector<Vertex>{Vertex{1} << 17, Vertex{1} << 20};
  const Config configs[] = {
      {"dial", SsspKernel::kDial, serve::Renumber::kNone},
      {"delta", SsspKernel::kDelta, serve::Renumber::kNone},
      {"delta_ds", SsspKernel::kDelta, serve::Renumber::kDegreeSort},
  };

  Table table({"n", "m", "config", "gen_s", "gen_meps", "build_s",
               "sssp_runs", "qps", "sssp_meps", "peak_rss_mb", "identical"});
  std::string json;
  for (const Vertex n : sizes) {
    const std::int64_t m = 8 * static_cast<std::int64_t>(n);
    StreamGenReport gen_report;
    Timer gen_timer;
    const Graph g = stream_connected_gnm(n, m, 2024, &gen_report);
    const double gen_s = gen_timer.seconds();
    const double gen_eps =
        gen_s > 0 ? static_cast<double>(g.num_edges()) / gen_s : 0;

    // Weighted serving graph, one bulk construction (no per-edge hash map).
    std::vector<WeightedEdge> weighted;
    weighted.reserve(static_cast<std::size_t>(g.num_edges()));
    for (const Edge& e : g.edges()) {
      weighted.push_back({e.u, e.v, edge_weight_of(e.u, e.v)});
    }
    const WeightedGraph h =
        WeightedGraph::from_edges(g.num_vertices(), std::move(weighted));

    serve::WorkloadSpec workload;
    workload.kind = serve::WorkloadKind::kGrouped;
    workload.num_queries = smoke ? 512 : 2048;
    workload.group_size = 256;
    workload.seed = 42;
    const std::vector<serve::Query> queries =
        serve::generate_workload(g.num_vertices(), workload);

    std::vector<Dist> reference;  // dial serial answers, the row's anchor
    for (const Config& config : configs) {
      serve::ServeOptions options;
      options.cache_mb = 512;
      options.kernel = config.kernel;
      options.renumber = config.renumber;

      Timer build_timer;
      const serve::QueryEngine engine(h, 1.0, 0, options);
      const serve::QueryEngine cold(h, 1.0, 0, options);
      const double build_s = build_timer.seconds();

      const serve::BatchResult serial = engine.serve(queries, 1);
      const serve::BatchResult parallel = cold.serve(queries, threads);

      if (reference.empty()) reference = serial.answers;
      const bool identical =
          serial.answers == parallel.answers && serial.answers == reference;
      if (!identical) {
        std::cerr << "FAIL: answers diverge (config " << config.label
                  << ", n = " << n << ") — kernels must be exact\n";
        failed = true;
      }

      // SSSP relaxation throughput of the parallel batch: arcs touched per
      // second across the SSSPs actually executed.
      const std::int64_t arcs = 2 * g.num_edges();
      const double sssp_eps =
          parallel.wall_s > 0
              ? static_cast<double>(parallel.cache.sssp_runs) *
                    static_cast<double>(arcs) / parallel.wall_s
              : 0;
      const double peak_rss = util::peak_rss_mb();  // process HWM, monotone

      table.row()
          .add(n)
          .add(g.num_edges())
          .add(config.label)
          .add(gen_s, 2)
          .add(gen_eps / 1e6, 2)
          .add(build_s, 2)
          .add(parallel.cache.sssp_runs)
          .add(parallel.qps, 0)
          .add(sssp_eps / 1e6, 1)
          .add(peak_rss, 0)
          .add(identical ? "yes" : "NO");

      if (!json.empty()) json += ",\n";
      json += "    {\"n\": " + std::to_string(n) +
              ", \"m\": " + std::to_string(g.num_edges()) +
              ", \"kernel\": \"" + sssp_kernel_name(config.kernel) +
              "\", \"degree_sort\": " +
              (config.renumber == serve::Renumber::kDegreeSort ? "1" : "0") +
              ", \"queries\": " + std::to_string(workload.num_queries) +
              ", \"threads\": " + std::to_string(threads) +
              ", \"checksum\": " + std::to_string(parallel.checksum) +
              ", \"sssp_runs\": " + std::to_string(parallel.cache.sssp_runs) +
              ", \"gen_s\": " + format_double(gen_s, 3) +
              ", \"gen_edges_per_s\": " + format_double(gen_eps, 0) +
              ", \"build_s\": " + format_double(build_s, 3) +
              ", \"wall_s\": " + format_double(parallel.wall_s, 4) +
              ", \"qps\": " + format_double(parallel.qps, 0) +
              ", \"serial_qps\": " + format_double(serial.qps, 0) +
              ", \"sssp_edges_per_s\": " + format_double(sssp_eps, 0) +
              ", \"peak_rss_mb\": " + format_double(peak_rss, 1) +
              ", \"gen\": " + gen_report.stats_json() + "}";
    }
  }
  table.print(std::cout,
              "E10: scale tier (streamed er-connected, deg 8, weights 1..16, "
              "grouped queries, threads=" + std::to_string(threads) + ")");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"scale\",\n  \"smoke\": " << (smoke ? 1 : 0)
        << ",\n  \"threads\": " << threads << ",\n  \"rows\": [\n"
        << json << "\n  ]\n}\n";
    std::cout << "\n[wrote " << json_path << "]\n";
  }

  bench::note("Interpretation: gen_meps is streamed generation throughput "
              "(unique edges/s); sssp_meps is kernel relaxation throughput "
              "(arcs/s across the batch's SSSPs) — the number the flat "
              "frontier + packed CSR work moves. peak_rss_mb is the process "
              "high-water mark and therefore monotone across rows; the "
              "n=2^17 rows run first so their figure is not inflated by the "
              "2^20 rows. 'identical' certifies dial, delta and "
              "degree-sorted delta agree bit-for-bit, serial == parallel.");
  std::cout << "\n[E10 done in " << format_double(total.seconds(), 1)
            << "s]\n";
  return failed ? 1 : 0;
}
