// Experiment E7 — ablations of the paper's design choices (§1.2, §2).
//
// (a) Buffer set N_i vs [EP01] ground partition: the paper's structural
//     innovation. Removing N_i and adding a ground forest (= EP01) must
//     cost ~n extra edges at large kappa.
// (b) Degree sequence: the paper's point is that the ORIGINAL [EP01]
//     sequence deg_i = n^(2^i/kappa) suffices for exactly n^(1+1/kappa)
//     under the joint charging analysis; the optimized [EN17a] sequence
//     (within the same Algorithm 1 skeleton) changes phase counts and edge
//     mix but not the headline.
// (c) Hub-splitting threshold (distributed Task 3): factor 2 is the
//     paper's; larger factors split later (fewer superclusters, bigger
//     stride cost). Rounds and supercluster counts respond as predicted.

#include <cmath>
#include <iostream>

#include "baselines/ep01_emulator.hpp"
#include "bench_common.hpp"
#include "core/emulator_centralized.hpp"
#include "core/emulator_distributed.hpp"
#include "core/params.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

void ablation_buffer_vs_ground() {
  Table table({"n", "kappa", "ours(N_i)", "EP01(ground)", "extra", "extra/n"});
  for (const Vertex n : {1024, 2048, 4096}) {
    const Graph g = gen_connected_gnm(n, 4L * n, 55);
    const int kappa = static_cast<int>(std::ceil(std::log2(n)));
    const auto params = CentralizedParams::compute(n, kappa, 0.25);
    CentralizedOptions options;
    options.keep_audit_data = false;
    const auto ours = build_emulator_centralized(g, params, options);
    const auto ep01 = build_emulator_ep01(g, params);
    const std::int64_t extra = ep01.h.num_edges() - ours.h.num_edges();
    table.row()
        .add(static_cast<std::int64_t>(n))
        .add(kappa)
        .add(ours.h.num_edges())
        .add(ep01.h.num_edges())
        .add(extra)
        .add(static_cast<double>(extra) / static_cast<double>(n), 3);
  }
  table.print(std::cout,
              "E7a: buffer set N_i (ours) vs ground partition (EP01), "
              "kappa = log n");
}

void ablation_degree_sequence() {
  // Swap the degree sequence inside Algorithm 1: paper's original [EP01]
  // sequence vs an [EN17a]-flavoured slower sequence (gamma = 2).
  Table table({"n", "kappa", "EP01 seq |H|", "EN17 seq |H|", "bound",
               "EP01<=bound", "phases EP01", "phases EN17"});
  for (const Vertex n : {2048, 4096}) {
    const int kappa = 8;
    const Graph g = gen_connected_gnm(n, 4L * n, 66);
    const auto params = CentralizedParams::compute(n, kappa, 0.25);
    CentralizedOptions options;
    options.keep_audit_data = false;
    const auto ep01_seq = build_emulator_centralized(g, params, options);

    // EN17a-style sequence injected into the same skeleton: deg_i =
    // n^((2^i - 1)/(2 kappa) + 1/kappa), one extra phase to compensate for
    // the slower growth. Obtain a schedule with ell+1 phases by computing
    // params for kappa' = 2^(ell+2) - 1, then overwrite the thresholds.
    const int ell = params.schedule.ell() + 1;
    auto en17_params = CentralizedParams::compute(
        n, static_cast<int>(ipow_sat(2, ell + 1) - 1), 0.25);
    en17_params.kappa = kappa;
    for (int i = 0; i <= ell; ++i) {
      const double expo = (std::pow(2.0, i) - 1.0) / (2.0 * kappa) + 1.0 / kappa;
      en17_params.schedule.deg[static_cast<std::size_t>(i)] =
          std::pow(static_cast<double>(n), expo);
    }
    const auto en17_seq = build_emulator_centralized(g, en17_params, options);

    table.row()
        .add(static_cast<std::int64_t>(n))
        .add(kappa)
        .add(ep01_seq.h.num_edges())
        .add(en17_seq.h.num_edges())
        .add(size_bound_edges(n, kappa))
        .add(ep01_seq.h.num_edges() <= size_bound_edges(n, kappa) ? "yes" : "NO")
        .add(static_cast<std::int64_t>(ep01_seq.phases.size()))
        .add(static_cast<std::int64_t>(en17_seq.phases.size()));
  }
  table.print(std::cout,
              "E7b: degree-sequence ablation inside Algorithm 1 "
              "(paper's point: the original EP01 sequence suffices)");
}

void ablation_hub_threshold() {
  Table table({"factor", "rounds", "superclusters(total)", "|H|",
               "endpoints_ok"});
  const Graph g = gen_family("caveman", 256, 88);
  const auto params = DistributedParams::compute(g.num_vertices(), 4, 0.49, 0.4);
  for (const int factor : {1, 2, 4, 8}) {
    DistributedOptions options;
    options.keep_audit_data = false;
    options.hub_threshold_factor = factor;
    const auto r = build_emulator_distributed(g, params, options);
    std::int64_t superclusters = 0;
    for (const auto& p : r.base.phases) superclusters += p.clusters_out;
    table.row()
        .add(factor)
        .add(r.net.rounds)
        .add(superclusters)
        .add(r.base.h.num_edges())
        .add(r.endpoints_consistent() ? "yes" : "NO");
  }
  table.print(std::cout,
              "E7c: hub-splitting threshold factor (paper uses 2) — "
              "caveman n=256");
}

}  // namespace
}  // namespace usne

int main() {
  using namespace usne;
  bench::banner("E7  bench_ablation",
                "Design-choice ablations: buffer set vs ground partition; "
                "degree sequences; hub-split threshold.");
  Timer total;
  ablation_buffer_vs_ground();
  ablation_degree_sequence();
  ablation_hub_threshold();
  bench::note("Interpretation: (a) the ground partition costs ~n extra "
              "edges — exactly what the N_i mechanism removes; (b) the "
              "original EP01 sequence already meets the n^(1+1/kappa) bound "
              "under the joint analysis — the optimized sequence is not "
              "needed; (c) all hub thresholds give valid emulators, with "
              "round costs scaling with the factor.");
  std::cout << "\n[E7 done in " << format_double(total.seconds(), 1) << "s]\n";
  return 0;
}
