#pragma once

// Shared plumbing for the experiment binaries (bench/): banner printing and
// the standard workloads. Every binary runs standalone with no arguments
// and prints paper-style markdown tables; EXPERIMENTS.md records the
// claim-by-claim comparison.

#include <iostream>
#include <string>

#include "graph/generators.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace usne::bench {

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n==========================================================\n"
            << id << "\n" << claim << "\n"
            << "==========================================================\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

}  // namespace usne::bench
