// Experiment E1 — emulator size vs kappa (paper Corollary 2.14).
//
// Claim: Algorithm 1 produces a (1+eps, beta)-emulator with AT MOST
// n^(1+1/kappa) edges — leading constant exactly 1 — where all prior
// constructions pay a constant c >= 2 at their sparsest ([EP01] via its
// ground partition; [TZ06]/[EN17a] via randomized per-phase accounting).
//
// All four constructions are dispatched through the unified registry
// (api/build.hpp): one BuildSpec per column, no per-algorithm glue.
//
// Output: one table per graph family; columns are edge counts of each
// construction and the ratio |H| / n^(1+1/kappa) (ours must be <= 1).

#include <cmath>
#include <iostream>

#include "api/build.hpp"
#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

/// Builds `algo` on g via the registry. `seed_offset` keeps the randomized
/// baselines on the exact seeds the experiment has always used.
BuildOutput build_one(const Graph& g, const char* algo, int kappa, double eps,
                      std::uint64_t seed, std::uint64_t seed_offset) {
  BuildSpec spec;
  spec.algorithm = algo;
  spec.params.kappa = kappa;
  spec.params.eps = eps;
  spec.exec.keep_audit_data = false;
  spec.exec.seed = seed + seed_offset;
  return build(g, spec);
}

void run_family(const std::string& family, Vertex n, std::uint64_t seed) {
  const Graph g = gen_family(family, n, seed);
  const Vertex real_n = g.num_vertices();
  const double eps = 0.25;

  Table table({"kappa", "bound n^(1+1/k)", "ours", "ours/bound", "EP01",
               "TZ06", "EN17a", "|E(G)|"});
  const int log_n = static_cast<int>(std::ceil(std::log2(real_n)));
  for (const int kappa : {2, 3, 4, 8, 16, log_n}) {
    const BuildOutput ours =
        build_one(g, "emulator_centralized", kappa, eps, seed, 0);

    table.row()
        .add(kappa)
        .add(size_bound_edges(real_n, kappa))
        .add(ours.h().num_edges())
        .add(size_bound_ratio(ours.h(), real_n, kappa), 4)
        .add(build_one(g, "emulator_ep01", kappa, eps, seed, 0).h().num_edges())
        .add(build_one(g, "emulator_tz06", kappa, eps, seed, 1).h().num_edges())
        .add(build_one(g, "emulator_en17", kappa, eps, seed, 2).h().num_edges())
        .add(g.num_edges());
  }
  table.print(std::cout, "E1: " + family + " (n=" + std::to_string(real_n) +
                             ", eps=" + format_double(eps, 2) + ")");
}

}  // namespace
}  // namespace usne

int main() {
  using namespace usne;
  bench::banner("E1  bench_size_vs_kappa",
                "Corollary 2.14: |H| <= n^(1+1/kappa), leading constant 1; "
                "baselines pay more.");
  Timer timer;

  run_family("er", 2048, 11);
  run_family("er", 4096, 12);
  run_family("ba", 2048, 13);
  run_family("torus", 2048, 14);
  run_family("caveman", 2048, 15);

  bench::note("Interpretation: 'ours/bound' <= 1.0 in every row is the "
              "paper's headline (leading constant exactly 1, deterministic).");
  bench::note("EP01 pays its ground partition in every row; TZ06 pays the "
              "randomized closer-than-sampled interconnection. EN17a is "
              "randomized linear-size: it can land near (occasionally just "
              "below) ours on some inputs but carries no deterministic "
              "per-instance bound, which is precisely the gap the paper "
              "closes.");
  std::cout << "\n[E1 done in " << format_double(timer.seconds(), 1) << "s]\n";
  return 0;
}
