// Experiment E8 — the application the paper's introduction motivates:
// approximate shortest paths / distance oracles.
//
// An ultra-sparse emulator H has ~n edges, so single-source distance
// computations on H cost ~O(n log n) regardless of |E|. We compare per-
// query time of BFS on G vs Dijkstra on H, and report the observed stretch
// of the answers. Denser inputs benefit more.

#include <iostream>

#include "bench_common.hpp"
#include "core/emulator_fast.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "path/bfs.hpp"
#include "path/dijkstra.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

int main() {
  using namespace usne;
  bench::banner("E8  bench_oracle",
                "Application (paper §1.1): approximate shortest paths on the "
                "emulator instead of the graph.");
  Timer total;

  Table table({"n", "avg_deg", "|E(G)|", "|H|", "BFS(G) ms/query",
               "Dial(H) ms/query", "speedup", "mean mult", "max add"});
  for (const auto& [n, avg_deg] :
       std::vector<std::pair<Vertex, int>>{{8192, 16}, {16384, 16},
                                           {16384, 32}, {16384, 64},
                                           {32768, 16}, {32768, 48}}) {
    const Graph g =
        gen_connected_gnm(n, static_cast<std::int64_t>(n) * avg_deg / 2, 7);
    const double log_n = std::log2(static_cast<double>(n));
    const int kappa = static_cast<int>(std::ceil(log_n * 2));
    const auto params = DistributedParams::compute(n, kappa, 0.3, 0.25);
    FastOptions options;
    options.keep_audit_data = false;
    const auto r = build_emulator_fast(g, params, options);

    // Deterministic query sources.
    Rng rng(99);
    std::vector<Vertex> sources;
    for (int i = 0; i < 20; ++i) {
      sources.push_back(static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n))));
    }

    Timer bfs_timer;
    std::int64_t sink = 0;
    for (const Vertex s : sources) {
      const auto d = bfs_distances(g, s);
      sink += d[static_cast<std::size_t>((s + 1) % n)];
    }
    const double bfs_ms = bfs_timer.millis() / static_cast<double>(sources.size());

    Timer h_timer;
    for (const Vertex s : sources) {
      // Dial's bucket queue: emulator weights are small integers, so this
      // runs in O(n + |H| + max distance) — no heap log-factor.
      const auto d = dial_sssp(r.h, s);
      sink += d[static_cast<std::size_t>((s + 1) % n)] == kInfDist
                  ? 0
                  : d[static_cast<std::size_t>((s + 1) % n)];
    }
    const double h_ms = h_timer.millis() / static_cast<double>(sources.size());

    const auto stretch = evaluate_stretch_sampled(
        g, r.h, params.schedule.alpha_bound(), params.schedule.beta_bound(), 8, 3);

    table.row()
        .add(static_cast<std::int64_t>(n))
        .add(avg_deg)
        .add(g.num_edges())
        .add(r.h.num_edges())
        .add(bfs_ms, 3)
        .add(h_ms, 3)
        .add(bfs_ms / h_ms, 2)
        .add(stretch.mean_mult, 3)
        .add(stretch.max_additive);
    (void)sink;
  }
  table.print(std::cout, "E8: query time on G vs on the ultra-sparse H");

  bench::note("Interpretation: H has ~n edges regardless of |E(G)|, so "
              "queries on H get cheaper relative to BFS as the input gets "
              "denser, at bounded (1+eps, beta) stretch. This is the "
              "almost-shortest-paths application of the intro.");
  std::cout << "\n[E8 done in " << format_double(total.seconds(), 1) << "s]\n";
  return 0;
}
